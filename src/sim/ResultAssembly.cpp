//===- ResultAssembly.cpp -------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "sim/ResultAssembly.h"

#include "support/Check.h"
#include "workloads/fuzz/FuzzGenerator.h"

using namespace trident;

SimResult
trident::assembleSimResult(const MachineSnapshot &M,
                           const std::function<void(StatRegistry &)> &Extra) {
  const Workload &W = *M.W;
  const SimConfig &Config = *M.Config;
  const CoreConfig &CoreCfg = *M.CoreCfg;
  SmtCore &Core = *M.Core;
  MemorySystem &Mem = *M.Mem;

  SimResult Res;
  Res.Workload = W.Name;
  Res.ConfigName = Config.EnableTrident
                       ? std::string("trident-") +
                             prefetchModeName(Config.Runtime.Mode)
                       : hwPfConfigName(Config.HwPf);
  if (Config.Selector.enabled())
    Res.ConfigName += "+" + Config.Selector.shortName();
  if (!Config.MixWith.empty()) {
    Res.ConfigName += "+mix(";
    for (size_t I = 0; I < Config.MixWith.size(); ++I) {
      if (I > 0)
        Res.ConfigName += "+";
      Res.ConfigName += Config.MixWith[I];
    }
    Res.ConfigName += ")";
  }
  Res.Instructions = Core.stats(0).CommittedOriginal;
  TRIDENT_CHECK(M.Stop != SmtCore::StopReason::CommitTarget ||
                    Res.Instructions >= Config.SimInstructions,
                "run stopped at the commit target with only %llu of %llu "
                "instructions committed",
                (unsigned long long)Res.Instructions,
                (unsigned long long)Config.SimInstructions);
  Res.Cycles = M.End - M.Start;
  Res.Ipc = Res.Cycles == 0
                ? 0.0
                : static_cast<double>(Res.Instructions) /
                      static_cast<double>(Res.Cycles);
  Res.Mem = Mem.stats();
  if (M.Runtime) {
    Res.Runtime = M.Runtime->stats();
    Res.Dlt = M.Runtime->dlt().stats();
  }
  if (const HwPrefetcher *Pf = Mem.prefetcher())
    Res.HwPf = Pf->snapshotStats();
  Res.PfFeedback = Mem.feedback();
  if (const Tlb *T = Mem.dtlb())
    Res.Tlb = T->stats();
  Res.HelperBusyCycles = Core.helperBusyCycles();
  Res.BranchMispredicts = Core.stats(0).BranchMispredicts;
  if (M.Injector)
    Res.Faults = M.Injector->stats();
  if (M.Monitor) {
    Res.Selector = M.Monitor->stats();
    Res.SelectorTrace = M.Monitor->trace();
    Res.SelectorFinalUnit = M.Monitor->currentUnitName();
  }
  Res.Halted = M.Stop == SmtCore::StopReason::Halted;
  uint64_t H = 1469598103934665603ull;
  for (unsigned R = 0; R < reg::NumRegs; ++R) {
    // Exclude optimizer scratch registers: they are runtime-owned.
    if (R >= reg::FirstScratch)
      continue;
    H = (H ^ Core.getReg(0, R)) * 1099511628211ull;
  }
  Res.RegChecksum = H;
  Res.EventsPublished = M.Bus->publishedCounts();

  // Snapshot the whole machine into the named-statistics registry.
  auto Reg = std::make_shared<StatRegistry>();
  Reg->setCounter("core.instructions", Res.Instructions);
  Reg->setCounter("core.cycles", Res.Cycles);
  Reg->setReal("core.ipc", Res.Ipc);
  Reg->setCounter("core.helper_busy_cycles", Res.HelperBusyCycles);
  Reg->setCounter("core.halted", Res.Halted ? 1 : 0);
  for (unsigned I = 0; I < Config.Core.NumContexts; ++I)
    Core.stats(I).registerInto(*Reg, "cpu.ctx" + std::to_string(I) + ".");
  Res.Mem.registerInto(*Reg, "mem.");
  Res.Tlb.registerInto(*Reg, "tlb.");
  Res.HwPf.registerInto(*Reg, "hwpf.");
  // The feedback block is opt-in (the sampling knob): the default export
  // set — and therefore the golden corpus — is untouched unless a config
  // explicitly turns the channel on.
  if (CoreCfg.HwPfFeedbackIntervalCommits > 0 && Mem.prefetcher()) {
    Reg->setCounter("hwpf.feedback.issued", Res.PfFeedback.Issued);
    Reg->setCounter("hwpf.feedback.useful", Res.PfFeedback.Useful);
    Reg->setCounter("hwpf.feedback.late", Res.PfFeedback.Late);
    Reg->setCounter("hwpf.feedback.demand_misses",
                    Res.PfFeedback.DemandMisses);
    Reg->setReal("hwpf.feedback.accuracy", Res.PfFeedback.accuracy());
    Reg->setReal("hwpf.feedback.coverage", Res.PfFeedback.coverage());
  }
  for (unsigned K = 0; K < kNumEventKinds; ++K) {
    // Kinds newer than the original eight export conditionally, so runs
    // that never publish them stay byte-identical to the golden corpus.
    if (K >= kNumCoreEventKinds && Res.EventsPublished[K] == 0)
      continue;
    Reg->setCounter(std::string("events.published.") +
                        eventKindName(static_cast<EventKind>(K)),
                    Res.EventsPublished[K]);
  }
  if (M.Runtime) {
    Res.Runtime.registerInto(*Reg, "trident.");
    Res.Dlt.registerInto(*Reg, "dlt.");
    const EventQueue &Q = M.Runtime->eventQueue();
    Reg->setCounter("trident.event_queue.capacity", Q.capacity());
    Reg->setCounter("trident.event_queue.dropped", Q.dropped());
    Reg->setCounter("trident.event_queue.peak_occupancy", Q.peakOccupancy());
    Reg->setHistogram("trident.event_queue.occupancy", Q.occupancyHistogram());
  }
  // "faults." lines appear only when something actually fired: a plan
  // that never triggers exports byte-identically to a fault-free run
  // (the disabled-injector identity contract).
  if (M.Injector && Res.Faults.Injected > 0)
    Res.Faults.registerInto(*Reg, "faults.");
  // "selector." lines appear only when the control plane was built, the
  // same only-when-on pattern: static runs export byte-identically to a
  // pre-control-plane build.
  if (M.Monitor)
    Res.Selector.registerInto(*Reg, "selector.");
  // Fuzzed scenarios export their generator hash so golden corpora and
  // cross-run identity checks pin the exact program, not just its stats.
  // Named (non-fuzz) workloads export nothing new, keeping the legacy
  // golden corpus byte-identical.
  if (isFuzzSpec(W.Name))
    Reg->setCounter("workload.program_hash", W.ProgramHash);
  if (Extra)
    Extra(*Reg);
  Res.Registry = std::move(Reg);
  return Res;
}
