//===- ResultAssembly.h - Shared SimResult/registry assembly ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared tail of a simulation run: reading the machine back into a
/// SimResult and snapshotting the named-statistics registry. Both the solo
/// path (runSimulation) and the multi-programmed mix scheduler
/// (runMixSimulation) end in exactly this code, so the only-when-on export
/// contracts — faults.* only when something fired, selector.* only when
/// the control plane was built, conditional event kinds — live in one
/// place and cannot drift between the two.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SIM_RESULTASSEMBLY_H
#define TRIDENT_SIM_RESULTASSEMBLY_H

#include "control/PhaseMonitor.h"
#include "cpu/SmtCore.h"
#include "sim/Simulation.h"

#include <functional>

namespace trident {

/// Everything assembleSimResult reads. Pointers may be null exactly where
/// runSimulation may not have built the component (runtime, injector,
/// monitor, tracer-only buses never appear here — the bus is required).
struct MachineSnapshot {
  const Workload *W = nullptr;
  const SimConfig *Config = nullptr;
  /// The core config the machine actually ran with (selector-heartbeat
  /// resolution may differ from Config->Core).
  const CoreConfig *CoreCfg = nullptr;
  SmtCore *Core = nullptr;
  MemorySystem *Mem = nullptr;
  EventBus *Bus = nullptr;
  TridentRuntime *Runtime = nullptr;
  FaultInjector *Injector = nullptr;
  PhaseMonitor *Monitor = nullptr;
  Cycle Start = 0;
  Cycle End = 0;
  SmtCore::StopReason Stop = SmtCore::StopReason::CommitTarget;
};

/// Assembles the measured SimResult and its registry snapshot from \p M.
/// \p Extra, when given, may add run-shape-specific lines (the mix
/// scheduler's mix.* block) before the registry is frozen into the result;
/// the JSONL export sorts by name, so late additions cannot perturb the
/// byte order of the common lines.
SimResult
assembleSimResult(const MachineSnapshot &M,
                  const std::function<void(StatRegistry &)> &Extra = nullptr);

} // namespace trident

#endif // TRIDENT_SIM_RESULTASSEMBLY_H
