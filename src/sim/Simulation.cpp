//===- Simulation.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"

#include "branch/BranchPredictor.h"
#include "control/PhaseMonitor.h"
#include "support/Check.h"
#include "trident/CodeCache.h"

using namespace trident;

std::string trident::hwPfConfigName(const std::string &Spec) {
  return PrefetcherRegistry::isNone(Spec) ? std::string("no-hwpf") : Spec;
}

SimConfig SimConfig::hwBaseline() {
  SimConfig C;
  C.HwPf = "sb8x8";
  C.EnableTrident = false;
  return C;
}

SimConfig SimConfig::withMode(PrefetchMode Mode) {
  SimConfig C = hwBaseline();
  C.EnableTrident = true;
  C.Runtime.Mode = Mode;
  return C;
}

SimResult trident::runSimulation(const Workload &W, const SimConfig &Config,
                                 EventTracer *Tracer) {
  // Build the machine.
  Program Prog = W.Prog; // private copy: Trident patches it
  DataMemory Data;
  W.Init(Data);

  MemorySystem Mem(Config.Mem);
  // Resolve the prefetcher spec through the arsenal registry; the TLB
  // model (when on) makes page-bounded units stop streams at pages. The
  // env outlives this block: the phase monitor rebuilds units with it at
  // every swap.
  PrefetcherEnv Env;
  Env.PageBounded = Config.Mem.Tlb.Enable;
  Env.PageBits = Config.Mem.Tlb.PageBits;
  {
    std::string PfError;
    std::unique_ptr<HwPrefetcher> Unit =
        PrefetcherRegistry::instance().create(Config.HwPf, Env, &PfError);
    TRIDENT_CHECK(Unit || PrefetcherRegistry::isNone(Config.HwPf),
                  "bad --hwpf spec '%s': %s", Config.HwPf.c_str(),
                  PfError.c_str());
    if (Unit)
      Mem.attachPrefetcher(std::move(Unit));
  }

  // An enabled selector needs the feedback heartbeat; a local copy keeps
  // the caller's config untouched (the memo-cache fingerprint must stay
  // stable across runSimulation).
  CoreConfig CoreCfg = Config.Core;
  if (Config.Selector.enabled() && CoreCfg.HwPfFeedbackIntervalCommits == 0)
    CoreCfg.HwPfFeedbackIntervalCommits = Config.Selector.IntervalCommits;

  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreCfg, Image, Data, Mem);
  MetaPredictor Predictor;
  Core.setBranchPredictor(&Predictor);

  // The event bus: the core publishes its commit/load/branch stream into
  // it; the Trident runtime's monitors and any observability sinks
  // subscribe. Subscribe the runtime first — monitor dispatch order is
  // load-bearing, the tracer is passive and rides behind.
  EventBus Bus;
  Core.setEventBus(&Bus);

  std::unique_ptr<TridentRuntime> Runtime;
  if (Config.EnableTrident) {
    RuntimeConfig RC = Config.Runtime;
    RC.MemoryLatency = Config.Mem.MemoryLatency;
    RC.L1HitLatency = Config.Mem.L1.HitLatency;
    Runtime = std::make_unique<TridentRuntime>(RC, Prog, Core, CC);
    Runtime->attach(Bus);
  }
  // The control plane: constructed only when a selector policy is on, so
  // static runs build exactly the pre-control-plane machine. Subscribed
  // after the runtime's monitors (they never touch the HwPfFeedback kind,
  // but keeping one subscription order is cheap insurance) and before the
  // injector, so a fault landing on the same cycle perturbs the post-
  // decision machine.
  std::unique_ptr<PhaseMonitor> Monitor;
  if (Config.Selector.enabled()) {
    Monitor = std::make_unique<PhaseMonitor>(Config.Selector, Mem, Env,
                                             Config.HwPf);
    Monitor->attach(Bus);
  }
  // Fault injection: constructed only for a non-empty plan, so fault-free
  // runs build exactly the pre-fault-injection machine. Subscribed after
  // the runtime's monitors (the injector perturbs state between events,
  // never inside the monitors' view of one) and before the tracer.
  std::unique_ptr<FaultInjector> Injector;
  if (!Config.Faults.empty()) {
    FaultTargets Targets;
    Targets.Mem = &Mem;
    Targets.Runtime = Runtime.get();
    Injector = std::make_unique<FaultInjector>(Config.Faults, Targets);
    Injector->attach(Bus);
  }
  // The tracer is a passive flight recorder, so it rides the deferred
  // (batched) dispatch path: the core's hot loop stages a copy per event
  // and the tracer sees kind-ordered blocks instead of costing a virtual
  // call inside the issue loop.
  if (Tracer)
    Bus.subscribeDeferred(Tracer, Tracer->mask());

  Core.startContext(0, Prog.entryPC());

  // Warmup: caches and predictors train; dynamic optimization disabled
  // (Section 4.2).
  if (Config.WarmupInstructions > 0) {
    SmtCore::StopReason R = Core.run(Config.WarmupInstructions);
    TRIDENT_CHECK(R != SmtCore::StopReason::CycleLimit,
                  "warmup of %llu instructions hit the cycle cap",
                  (unsigned long long)Config.WarmupInstructions);
    (void)R;
  }
  if (Runtime)
    Runtime->setEnabled(true);

  // Measurement window.
  Core.clearStats();
  Mem.clearStats();
  Bus.clearCounts();
  if (Runtime)
    Runtime->clearStats();
  // After Mem.clearStats(): the monitor's delta baselines re-zero with
  // the counters they shadow (the policy keeps its warmup learning).
  if (Monitor)
    Monitor->onMeasurementStart();
  Cycle Start = Core.now();
  SmtCore::StopReason Stop = Core.run(Config.SimInstructions);
  Cycle End = Core.now();
  // Deliver any staged partial block before sinks are read or destroyed.
  Bus.flush();
  // The measurement window runs strictly forward from the warmed-up state
  // (cycle-counter monotonicity across the warmup/measure boundary).
  TRIDENT_CHECK(End >= Start,
                "measurement window ran backwards: start %llu, end %llu",
                (unsigned long long)Start, (unsigned long long)End);

  SimResult Res;
  Res.Workload = W.Name;
  Res.ConfigName = Config.EnableTrident
                       ? std::string("trident-") +
                             prefetchModeName(Config.Runtime.Mode)
                       : hwPfConfigName(Config.HwPf);
  if (Config.Selector.enabled())
    Res.ConfigName += "+" + Config.Selector.shortName();
  Res.Instructions = Core.stats(0).CommittedOriginal;
  TRIDENT_CHECK(Stop != SmtCore::StopReason::CommitTarget ||
                    Res.Instructions >= Config.SimInstructions,
                "run stopped at the commit target with only %llu of %llu "
                "instructions committed",
                (unsigned long long)Res.Instructions,
                (unsigned long long)Config.SimInstructions);
  Res.Cycles = End - Start;
  Res.Ipc = Res.Cycles == 0
                ? 0.0
                : static_cast<double>(Res.Instructions) /
                      static_cast<double>(Res.Cycles);
  Res.Mem = Mem.stats();
  if (Runtime) {
    Res.Runtime = Runtime->stats();
    Res.Dlt = Runtime->dlt().stats();
  }
  if (const HwPrefetcher *Pf = Mem.prefetcher())
    Res.HwPf = Pf->snapshotStats();
  Res.PfFeedback = Mem.feedback();
  if (const Tlb *T = Mem.dtlb())
    Res.Tlb = T->stats();
  Res.HelperBusyCycles = Core.helperBusyCycles();
  Res.BranchMispredicts = Core.stats(0).BranchMispredicts;
  if (Injector)
    Res.Faults = Injector->stats();
  if (Monitor) {
    Res.Selector = Monitor->stats();
    Res.SelectorTrace = Monitor->trace();
    Res.SelectorFinalUnit = Monitor->currentUnitName();
  }
  Res.Halted = Stop == SmtCore::StopReason::Halted;
  uint64_t H = 1469598103934665603ull;
  for (unsigned R = 0; R < reg::NumRegs; ++R) {
    // Exclude optimizer scratch registers: they are runtime-owned.
    if (R >= reg::FirstScratch)
      continue;
    H = (H ^ Core.getReg(0, R)) * 1099511628211ull;
  }
  Res.RegChecksum = H;
  Res.EventsPublished = Bus.publishedCounts();

  // Snapshot the whole machine into the named-statistics registry.
  auto Reg = std::make_shared<StatRegistry>();
  Reg->setCounter("core.instructions", Res.Instructions);
  Reg->setCounter("core.cycles", Res.Cycles);
  Reg->setReal("core.ipc", Res.Ipc);
  Reg->setCounter("core.helper_busy_cycles", Res.HelperBusyCycles);
  Reg->setCounter("core.halted", Res.Halted ? 1 : 0);
  for (unsigned I = 0; I < Config.Core.NumContexts; ++I)
    Core.stats(I).registerInto(*Reg,
                               "cpu.ctx" + std::to_string(I) + ".");
  Res.Mem.registerInto(*Reg, "mem.");
  Res.Tlb.registerInto(*Reg, "tlb.");
  Res.HwPf.registerInto(*Reg, "hwpf.");
  // The feedback block is opt-in (the sampling knob): the default export
  // set — and therefore the golden corpus — is untouched unless a config
  // explicitly turns the channel on.
  if (CoreCfg.HwPfFeedbackIntervalCommits > 0 && Mem.prefetcher()) {
    Reg->setCounter("hwpf.feedback.issued", Res.PfFeedback.Issued);
    Reg->setCounter("hwpf.feedback.useful", Res.PfFeedback.Useful);
    Reg->setCounter("hwpf.feedback.late", Res.PfFeedback.Late);
    Reg->setCounter("hwpf.feedback.demand_misses",
                    Res.PfFeedback.DemandMisses);
    Reg->setReal("hwpf.feedback.accuracy", Res.PfFeedback.accuracy());
    Reg->setReal("hwpf.feedback.coverage", Res.PfFeedback.coverage());
  }
  for (unsigned K = 0; K < kNumEventKinds; ++K) {
    // Kinds newer than the original eight export conditionally, so runs
    // that never publish them stay byte-identical to the golden corpus.
    if (K >= kNumCoreEventKinds && Res.EventsPublished[K] == 0)
      continue;
    Reg->setCounter(std::string("events.published.") +
                        eventKindName(static_cast<EventKind>(K)),
                    Res.EventsPublished[K]);
  }
  if (Runtime) {
    Res.Runtime.registerInto(*Reg, "trident.");
    Res.Dlt.registerInto(*Reg, "dlt.");
    const EventQueue &Q = Runtime->eventQueue();
    Reg->setCounter("trident.event_queue.capacity", Q.capacity());
    Reg->setCounter("trident.event_queue.dropped", Q.dropped());
    Reg->setCounter("trident.event_queue.peak_occupancy", Q.peakOccupancy());
    Reg->setHistogram("trident.event_queue.occupancy", Q.occupancyHistogram());
  }
  // "faults." lines appear only when something actually fired: a plan
  // that never triggers exports byte-identically to a fault-free run
  // (the disabled-injector identity contract).
  if (Injector && Res.Faults.Injected > 0)
    Res.Faults.registerInto(*Reg, "faults.");
  // "selector." lines appear only when the control plane was built, the
  // same only-when-on pattern: static runs export byte-identically to a
  // pre-control-plane build.
  if (Monitor)
    Res.Selector.registerInto(*Reg, "selector.");
  Res.Registry = std::move(Reg);
  return Res;
}
