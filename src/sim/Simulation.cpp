//===- Simulation.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"

#include "branch/BranchPredictor.h"
#include "control/PhaseMonitor.h"
#include "sim/MixSimulation.h"
#include "sim/ResultAssembly.h"
#include "support/Check.h"
#include "trident/CodeCache.h"

using namespace trident;

std::string trident::hwPfConfigName(const std::string &Spec) {
  return PrefetcherRegistry::isNone(Spec) ? std::string("no-hwpf") : Spec;
}

SimConfig SimConfig::hwBaseline() {
  SimConfig C;
  C.HwPf = "sb8x8";
  C.EnableTrident = false;
  return C;
}

SimConfig SimConfig::withMode(PrefetchMode Mode) {
  SimConfig C = hwBaseline();
  C.EnableTrident = true;
  C.Runtime.Mode = Mode;
  return C;
}

SimResult trident::runSimulation(const Workload &W, const SimConfig &Config,
                                 EventTracer *Tracer) {
  // Multi-programmed mixes build a different machine shape (N cores over
  // one memory system); everything below is the solo path, untouched by
  // the mix feature so solo runs stay bit-identical.
  if (!Config.MixWith.empty())
    return runMixSimulation(W, Config, Tracer);

  // Build the machine.
  Program Prog = W.Prog; // private copy: Trident patches it
  DataMemory Data;
  W.Init(Data);

  MemorySystem Mem(Config.Mem);
  // Resolve the prefetcher spec through the arsenal registry; the TLB
  // model (when on) makes page-bounded units stop streams at pages. The
  // env outlives this block: the phase monitor rebuilds units with it at
  // every swap.
  PrefetcherEnv Env;
  Env.PageBounded = Config.Mem.Tlb.Enable;
  Env.PageBits = Config.Mem.Tlb.PageBits;
  {
    std::string PfError;
    std::unique_ptr<HwPrefetcher> Unit =
        PrefetcherRegistry::instance().create(Config.HwPf, Env, &PfError);
    TRIDENT_CHECK(Unit || PrefetcherRegistry::isNone(Config.HwPf),
                  "bad --hwpf spec '%s': %s", Config.HwPf.c_str(),
                  PfError.c_str());
    if (Unit)
      Mem.attachPrefetcher(std::move(Unit));
  }

  // An enabled selector needs the feedback heartbeat; a local copy keeps
  // the caller's config untouched (the memo-cache fingerprint must stay
  // stable across runSimulation).
  CoreConfig CoreCfg = Config.Core;
  if (Config.Selector.enabled() && CoreCfg.HwPfFeedbackIntervalCommits == 0)
    CoreCfg.HwPfFeedbackIntervalCommits = Config.Selector.IntervalCommits;

  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreCfg, Image, Data, Mem);
  MetaPredictor Predictor;
  Core.setBranchPredictor(&Predictor);

  // The event bus: the core publishes its commit/load/branch stream into
  // it; the Trident runtime's monitors and any observability sinks
  // subscribe. Subscribe the runtime first — monitor dispatch order is
  // load-bearing, the tracer is passive and rides behind.
  EventBus Bus;
  Core.setEventBus(&Bus);

  std::unique_ptr<TridentRuntime> Runtime;
  if (Config.EnableTrident) {
    RuntimeConfig RC = Config.Runtime;
    RC.MemoryLatency = Config.Mem.MemoryLatency;
    RC.L1HitLatency = Config.Mem.L1.HitLatency;
    Runtime = std::make_unique<TridentRuntime>(RC, Prog, Core, CC);
    Runtime->attach(Bus);
  }
  // The control plane: constructed only when a selector policy is on, so
  // static runs build exactly the pre-control-plane machine. Subscribed
  // after the runtime's monitors (they never touch the HwPfFeedback kind,
  // but keeping one subscription order is cheap insurance) and before the
  // injector, so a fault landing on the same cycle perturbs the post-
  // decision machine.
  std::unique_ptr<PhaseMonitor> Monitor;
  if (Config.Selector.enabled()) {
    Monitor = std::make_unique<PhaseMonitor>(Config.Selector, Mem, Env,
                                             Config.HwPf);
    Monitor->attach(Bus);
  }
  // Fault injection: constructed only for a non-empty plan, so fault-free
  // runs build exactly the pre-fault-injection machine. Subscribed after
  // the runtime's monitors (the injector perturbs state between events,
  // never inside the monitors' view of one) and before the tracer.
  std::unique_ptr<FaultInjector> Injector;
  if (!Config.Faults.empty()) {
    FaultTargets Targets;
    Targets.Mem = &Mem;
    Targets.Runtime = Runtime.get();
    Injector = std::make_unique<FaultInjector>(Config.Faults, Targets);
    Injector->attach(Bus);
  }
  // The tracer is a passive flight recorder, so it rides the deferred
  // (batched) dispatch path: the core's hot loop stages a copy per event
  // and the tracer sees kind-ordered blocks instead of costing a virtual
  // call inside the issue loop.
  if (Tracer)
    Bus.subscribeDeferred(Tracer, Tracer->mask());

  Core.startContext(0, Prog.entryPC());

  // Warmup: caches and predictors train; dynamic optimization disabled
  // (Section 4.2).
  if (Config.WarmupInstructions > 0) {
    SmtCore::StopReason R = Core.run(Config.WarmupInstructions);
    TRIDENT_CHECK(R != SmtCore::StopReason::CycleLimit,
                  "warmup of %llu instructions hit the cycle cap",
                  (unsigned long long)Config.WarmupInstructions);
    (void)R;
  }
  if (Runtime)
    Runtime->setEnabled(true);

  // Measurement window.
  Core.clearStats();
  Mem.clearStats();
  Bus.clearCounts();
  if (Runtime)
    Runtime->clearStats();
  // After Mem.clearStats(): the monitor's delta baselines re-zero with
  // the counters they shadow (the policy keeps its warmup learning).
  if (Monitor)
    Monitor->onMeasurementStart();
  Cycle Start = Core.now();
  SmtCore::StopReason Stop = Core.run(Config.SimInstructions);
  Cycle End = Core.now();
  // Deliver any staged partial block before sinks are read or destroyed.
  Bus.flush();
  // The measurement window runs strictly forward from the warmed-up state
  // (cycle-counter monotonicity across the warmup/measure boundary).
  TRIDENT_CHECK(End >= Start,
                "measurement window ran backwards: start %llu, end %llu",
                (unsigned long long)Start, (unsigned long long)End);

  MachineSnapshot M;
  M.W = &W;
  M.Config = &Config;
  M.CoreCfg = &CoreCfg;
  M.Core = &Core;
  M.Mem = &Mem;
  M.Bus = &Bus;
  M.Runtime = Runtime.get();
  M.Injector = Injector.get();
  M.Monitor = Monitor.get();
  M.Start = Start;
  M.End = End;
  M.Stop = Stop;
  return assembleSimResult(M);
}
