//===- ExperimentRunner.cpp -----------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "support/Check.h"

#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace trident;

//===----------------------------------------------------------------------===//
// Config fingerprinting
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a accumulator. Every field is folded in byte-by-byte, so field
/// order matters and any single-bit change perturbs the hash.
class Fnv1a {
public:
  void add(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      addByte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void add(int64_t V) { add(static_cast<uint64_t>(V)); }
  void add(int V) { add(static_cast<int64_t>(V)); }
  void add(unsigned V) { add(static_cast<uint64_t>(V)); }
  void add(bool V) { add(static_cast<uint64_t>(V ? 1 : 0)); }
  void add(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    add(Bits);
  }
  void add(const std::string &S) {
    add(static_cast<uint64_t>(S.size()));
    for (char C : S)
      addByte(static_cast<uint8_t>(C));
  }
  uint64_t hash() const { return H; }

private:
  void addByte(uint8_t B) {
    H = (H ^ B) * 1099511628211ull;
  }
  uint64_t H = 1469598103934665603ull;
};

void addCacheConfig(Fnv1a &F, const CacheConfig &C) {
  F.add(C.Name);
  F.add(C.SizeBytes);
  F.add(C.Assoc);
  F.add(C.LineSize);
  F.add(C.HitLatency);
}

void addTlbConfig(Fnv1a &F, const TlbConfig &C) {
  F.add(C.Enable);
  F.add(C.NumEntries);
  F.add(C.Assoc);
  F.add(C.PageBits);
  F.add(C.WalkLatency);
}

void addMemConfig(Fnv1a &F, const MemSystemConfig &C) {
  addCacheConfig(F, C.L1);
  addCacheConfig(F, C.L2);
  addCacheConfig(F, C.L3);
  F.add(C.MemoryLatency);
  F.add(C.BusOccupancy);
  F.add(C.NumMSHRs);
  F.add(C.StreamBufferTransferLatency);
  addTlbConfig(F, C.Tlb);
}

void addCoreConfig(Fnv1a &F, const CoreConfig &C) {
  F.add(C.IssueWidth);
  F.add(C.RobSize);
  F.add(C.IntIssueLimit);
  F.add(C.FpIssueLimit);
  F.add(C.MemIssueLimit);
  F.add(C.MispredictPenalty);
  F.add(C.NumContexts);
  F.add(C.HwPfFeedbackIntervalCommits);
  F.add(C.MemBias);
}

void addDltConfig(Fnv1a &F, const DltConfig &C) {
  F.add(C.NumEntries);
  F.add(C.Assoc);
  F.add(C.MonitorWindow);
  F.add(C.MissThreshold);
  F.add(C.LatencyThreshold);
  F.add(C.StrideConfidentAt);
}

void addRuntimeConfig(Fnv1a &F, const RuntimeConfig &C) {
  F.add(static_cast<uint64_t>(C.Mode));
  F.add(C.LinkTraces);
  addDltConfig(F, C.Dlt);
  F.add(C.Profiler.NumEntries);
  F.add(C.Profiler.Assoc);
  F.add(C.Profiler.BitmapBits);
  F.add(C.Profiler.Rounds);
  F.add(C.Profiler.MaxCaptureCommits);
  F.add(C.Builder.MaxLength);
  F.add(C.Builder.RunClassicalOpts);
  F.add(C.Cost.StartupCycles);
  F.add(C.WatchEntries);
  F.add(C.HelperCtx);
  F.add(C.MemoryLatency);
  F.add(C.L1HitLatency);
  F.add(C.DistanceCap);
  F.add(C.MaxPendingEvents);
  F.add(C.SelfRepairInitialEstimate);
  F.add(C.ClearMatureOnPhaseChange);
  F.add(C.PhaseIntervalCommits);
  F.add(C.PhaseChangeThreshold);
}

void addSelectorConfig(Fnv1a &F, const SelectorConfig &C) {
  F.add(static_cast<uint64_t>(C.Policy));
  F.add(C.SamplesPerEpoch);
  F.add(C.IntervalCommits);
  F.add(C.Seed);
  F.add(C.EpsilonPermille);
  F.add(C.Ucb);
  F.add(C.EmaPermille);
  F.add(C.OracleUnit);
}

void addFaultPlan(Fnv1a &F, const FaultPlan &P) {
  F.add(P.Seed);
  F.add(static_cast<uint64_t>(P.Actions.size()));
  for (const FaultAction &A : P.Actions) {
    F.add(static_cast<uint64_t>(A.Trigger));
    F.add(A.At);
    F.add(static_cast<uint64_t>(A.Counted));
    F.add(static_cast<uint64_t>(A.Kind));
    F.add(A.RangeLo);
    F.add(A.RangeHi);
    F.add(A.ExtraMemLatency);
    F.add(A.ExtraL2Latency);
    F.add(A.DurationCycles);
    F.add(A.Count);
  }
}

} // namespace

// NOTE: enumerate every SimConfig field (transitively) here. A field
// missing from the fingerprint makes two distinct experiments collide in
// the memo cache, which silently reuses the wrong result.
uint64_t trident::configFingerprint(const SimConfig &C) {
  Fnv1a F;
  addCoreConfig(F, C.Core);
  addMemConfig(F, C.Mem);
  F.add(C.HwPf);
  F.add(C.EnableTrident);
  addRuntimeConfig(F, C.Runtime);
  F.add(C.WarmupInstructions);
  F.add(C.SimInstructions);
  addFaultPlan(F, C.Faults);
  addSelectorConfig(F, C.Selector);
  // Mix co-runners change the whole memory picture; the lane list (names
  // AND order — lane index picks the address bias) and the scheduling
  // quantum are both part of the experiment's identity.
  F.add(C.MixWith.size());
  for (const std::string &Lane : C.MixWith)
    F.add(Lane);
  F.add(C.MixQuantumCycles);
  return F.hash();
}

//===----------------------------------------------------------------------===//
// Oracle selector resolution
//===----------------------------------------------------------------------===//

SimConfig trident::resolveSelectorOracle(ExperimentRunner &R,
                                         const Workload &W,
                                         const SimConfig &Config) {
  if (Config.Selector.Policy != SelectorPolicy::Oracle ||
      !Config.Selector.OracleUnit.empty())
    return Config;
  // First pass: every static arsenal unit over the same workload/config
  // (selector off — these are exactly the static cells a sweep like fig10
  // also runs, so the memo cache makes this pass nearly free there).
  const std::vector<std::string> Arms =
      PrefetcherRegistry::instance().arsenalNames();
  std::vector<ExperimentJob> Jobs;
  Jobs.reserve(Arms.size());
  for (const std::string &Arm : Arms) {
    SimConfig C = Config;
    C.Selector = SelectorConfig();
    C.HwPf = Arm;
    Jobs.push_back(ExperimentJob{W, C});
  }
  std::vector<std::shared_ptr<const SimResult>> Results = R.runBatch(Jobs);
  // Pick the unit minimizing total exposed latency — the metric the
  // selector rewards. Strict < keeps ties on the first (lexicographically
  // smallest) arm, so resolution is deterministic.
  size_t Best = 0;
  for (size_t I = 1; I < Results.size(); ++I)
    if (Results[I]->Mem.TotalExposedLatency <
        Results[Best]->Mem.TotalExposedLatency)
      Best = I;
  SimConfig Resolved = Config;
  Resolved.Selector.OracleUnit = Arms[Best];
  return Resolved;
}

//===----------------------------------------------------------------------===//
// Process-wide memo cache
//===----------------------------------------------------------------------===//

namespace {

struct ResultCache {
  std::mutex Mu;
  // trident-analyze: guarded-by(Mu)
  std::unordered_map<std::string, std::shared_ptr<const SimResult>> Map;

  static ResultCache &instance() {
    static ResultCache C;
    return C;
  }
};

std::string cacheKey(const std::string &WorkloadName, uint64_t Fingerprint) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Fingerprint));
  std::string Key;
  Key.reserve(WorkloadName.size() + 1 + 16);
  Key.append(WorkloadName);
  Key.push_back('\0');
  Key.append(Buf);
  return Key;
}

} // namespace

void ExperimentRunner::clearResultCache() {
  ResultCache &C = ResultCache::instance();
  std::lock_guard<std::mutex> L(C.Mu);
  C.Map.clear();
}

size_t ExperimentRunner::resultCacheSize() {
  ResultCache &C = ResultCache::instance();
  std::lock_guard<std::mutex> L(C.Mu);
  return C.Map.size();
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

unsigned ExperimentRunner::defaultThreadCount() {
  if (const char *E = std::getenv("TRIDENT_BENCH_JOBS"))
    if (unsigned V = static_cast<unsigned>(std::strtoul(E, nullptr, 10)))
      return V;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ExperimentRunner::ExperimentRunner(ExperimentRunnerOptions Opts)
    : NumThreads(Opts.Threads == 0 ? defaultThreadCount() : Opts.Threads),
      UseCache(Opts.UseCache) {
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ExperimentRunner::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkAvailable.wait(
          L, [this] { return ShuttingDown || NextTask < Tasks.size(); });
      if (NextTask >= Tasks.size()) {
        if (ShuttingDown)
          return;
        continue;
      }
      Task = Tasks[NextTask++];
    }
    Task();
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Completed;
    }
    BatchDone.notify_all();
  }
}

std::vector<std::shared_ptr<const SimResult>>
ExperimentRunner::runBatch(const std::vector<ExperimentJob> &Jobs) {
  std::vector<std::shared_ptr<const SimResult>> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  // Coalesce duplicate (workload, config) keys: each unique key simulates
  // once, and every submission slot that shares the key shares the result
  // object. Keys already in the process cache do not simulate at all.
  struct Group {
    size_t FirstJob;
    std::vector<size_t> Slots;
    std::string Key;
  };
  std::vector<Group> ToRun;
  if (UseCache) {
    ResultCache &C = ResultCache::instance();
    std::unordered_map<std::string, size_t> KeyToGroup;
    std::lock_guard<std::mutex> L(C.Mu);
    for (size_t I = 0; I < Jobs.size(); ++I) {
      std::string Key =
          cacheKey(Jobs[I].W.Name, configFingerprint(Jobs[I].Config));
      if (auto Hit = C.Map.find(Key); Hit != C.Map.end()) {
        Results[I] = Hit->second;
        continue;
      }
      auto [It, Inserted] = KeyToGroup.try_emplace(Key, ToRun.size());
      if (Inserted)
        ToRun.push_back(Group{I, {I}, std::move(Key)});
      else
        ToRun[It->second].Slots.push_back(I);
    }
  } else {
    for (size_t I = 0; I < Jobs.size(); ++I)
      ToRun.push_back(Group{I, {I}, std::string()});
  }

  if (ToRun.empty())
    return Results;

  // Dispatch one task per unique key to the pool. Workers claim tasks in
  // index order off the shared cursor — no stealing, no reordering of the
  // result slots, and each task owns a complete machine instance.
  std::vector<std::shared_ptr<const SimResult>> GroupResults(ToRun.size());
  std::vector<std::function<void()>> Batch;
  Batch.reserve(ToRun.size());
  for (size_t G = 0; G < ToRun.size(); ++G) {
    const ExperimentJob &Job = Jobs[ToRun[G].FirstJob];
    Batch.push_back([this, &Job, &GroupResults, &ToRun, G] {
      // Fingerprint stability: a memo key must describe the simulation it
      // caches. If running the simulation perturbed the config (aliasing,
      // a stray const_cast), every later cache hit on this key would
      // silently return results for a different experiment.
      const uint64_t FingerprintBefore =
          UseCache ? configFingerprint(Job.Config) : 0;
      auto R = std::make_shared<const SimResult>(
          runSimulation(Job.W, Job.Config));
      GroupResults[G] = R;
      if (UseCache) {
        TRIDENT_CHECK(configFingerprint(Job.Config) == FingerprintBefore,
                      "config fingerprint changed across runSimulation for "
                      "workload '%s'; the memo cache key is unstable",
                      Job.W.Name.c_str());
        ResultCache &C = ResultCache::instance();
        std::lock_guard<std::mutex> L(C.Mu);
        C.Map.emplace(ToRun[G].Key, std::move(R));
      }
    });
  }

  {
    std::lock_guard<std::mutex> L(Mu);
    TRIDENT_CHECK(NextTask >= Tasks.size(),
                  "runBatch is not reentrant (task %zu of %zu still queued)",
                  NextTask, Tasks.size());
    Tasks = std::move(Batch);
    NextTask = 0;
    Completed = 0;
  }
  WorkAvailable.notify_all();

  {
    std::unique_lock<std::mutex> L(Mu);
    BatchDone.wait(L, [this] { return Completed == Tasks.size(); });
    Tasks.clear();
    NextTask = 0;
    Completed = 0;
  }

  for (size_t G = 0; G < ToRun.size(); ++G)
    for (size_t Slot : ToRun[G].Slots)
      Results[Slot] = GroupResults[G];
  return Results;
}

std::shared_ptr<const SimResult> ExperimentRunner::run(const Workload &W,
                                                       const SimConfig &Config) {
  return runBatch({ExperimentJob{W, Config}}).front();
}
