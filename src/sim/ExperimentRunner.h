//===- ExperimentRunner.h - Parallel batch experiment executor -*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs batches of independent (Workload, SimConfig) simulations across a
/// fixed pool of worker threads. Every figure of the paper is a sweep of
/// completely independent runs — each job builds its own machine, so the
/// sweep is embarrassingly parallel and results are bit-identical to
/// serial execution regardless of scheduling.
///
/// Two layers:
///
///  * A fixed-thread-pool executor (no work stealing: workers claim the
///    next unclaimed job off a shared atomic cursor). The pool size
///    defaults to std::thread::hardware_concurrency() and can be pinned
///    with the TRIDENT_BENCH_JOBS environment variable.
///
///  * A process-wide memoized result cache keyed by (workload name,
///    config fingerprint). The hardware-baseline runs shared by
///    Figures 4/5/6/9 simulate exactly once per process; duplicate jobs
///    inside one batch are also coalesced, so a batch may list the same
///    (workload, config) pair many times at the cost of one simulation.
///
/// Caveat: the cache trusts the workload *name* to identify the program
/// and its data image. The 14 named workloads satisfy this; if you build
/// ad-hoc workloads from the generators, give distinct variants distinct
/// names (or disable the cache for that batch).
///
/// Synchronization contract (audited under TSan; see
/// tests/runner_race_test.cpp):
///
///  * The memo cache is a single std::unordered_map guarded by one mutex
///    (ResultCache::Mu). Every read and write — the batch-front lookup,
///    worker insertion, clearResultCache(), resultCacheSize() — holds
///    that mutex; no entry is published by any other means.
///
///  * Values are std::shared_ptr<const SimResult>. Publication hands out
///    a copy of the shared_ptr under the mutex; the pointed-to SimResult
///    is immutable after construction, so concurrent readers of a cached
///    result never synchronize beyond the shared_ptr control block.
///
///  * Two runners (or one runner across batches) may race to simulate the
///    same key: the cache deliberately does NOT hold its mutex during
///    simulation. Both compute bit-identical results (determinism is
///    load-bearing here and asserted by tests); the first emplace wins
///    and the loser's result is dropped. This trades duplicated work in
///    a rare case for never blocking the pool on a long simulation.
///
///  * Batch state (Tasks/NextTask/Completed) is guarded by the runner's
///    own mutex Mu; workers claim a task under Mu, run it unlocked (each
///    job owns its whole machine), and report completion under Mu.
///    runBatch's final read of GroupResults is ordered after all worker
///    writes by the Completed == Tasks.size() wait on Mu.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SIM_EXPERIMENTRUNNER_H
#define TRIDENT_SIM_EXPERIMENTRUNNER_H

#include "sim/Simulation.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace trident {

/// Stable 64-bit FNV-1a fingerprint over every field of \p C that affects
/// simulation behaviour. Two configs with equal fingerprints run the same
/// experiment; any field change perturbs the fingerprint.
uint64_t configFingerprint(const SimConfig &C);

/// One unit of work: a workload run under a configuration.
struct ExperimentJob {
  Workload W;
  SimConfig Config;
};

class ExperimentRunner;

/// Resolves an oracle-selector config for \p W: runs every static arsenal
/// unit through \p R (first pass, memoized) and returns a copy of
/// \p Config with Selector.OracleUnit pinned to the unit with the lowest
/// total exposed latency. Configs that are not an unresolved oracle pass
/// through unchanged. MUST run at job-construction time — runBatch is not
/// reentrant, so the oracle can never resolve from inside a worker task.
SimConfig resolveSelectorOracle(ExperimentRunner &R, const Workload &W,
                                const SimConfig &Config);

struct ExperimentRunnerOptions {
  /// Worker threads. 0 = auto: $TRIDENT_BENCH_JOBS if set and nonzero,
  /// otherwise std::thread::hardware_concurrency().
  unsigned Threads = 0;
  /// Consult/populate the process-wide memo cache.
  bool UseCache = true;
};

/// Fixed-thread-pool executor over independent simulation jobs.
///
/// Results come back in submission order and are bit-identical to serial
/// execution: each job owns its full machine (core, caches, runtime), and
/// nothing in the simulator mutates shared state across jobs.
class ExperimentRunner {
public:
  explicit ExperimentRunner(ExperimentRunnerOptions Opts = {});
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner &) = delete;
  ExperimentRunner &operator=(const ExperimentRunner &) = delete;

  /// Runs every job and returns one result per job, in submission order.
  /// Duplicate (workload name, fingerprint) keys — within the batch or
  /// from earlier batches via the cache — share a single simulation and
  /// return the same underlying object.
  std::vector<std::shared_ptr<const SimResult>>
  runBatch(const std::vector<ExperimentJob> &Jobs);

  /// Convenience for a single run (still goes through the cache).
  std::shared_ptr<const SimResult> run(const Workload &W,
                                       const SimConfig &Config);

  unsigned threadCount() const { return NumThreads; }

  /// The pool size an options-default runner would use: $TRIDENT_BENCH_JOBS
  /// if set and nonzero, else hardware_concurrency(), min 1.
  static unsigned defaultThreadCount();

  // Process-wide memo cache management (shared by all runners). ----------
  static void clearResultCache();
  static size_t resultCacheSize();

private:
  void workerLoop();

  unsigned NumThreads = 1;
  bool UseCache = true;

  // Batch state, guarded by Mu. Workers claim tasks by incrementing
  // NextTask; the batch is done when Completed == Tasks.size().
  std::mutex Mu;
  std::condition_variable WorkAvailable;
  std::condition_variable BatchDone;
  // trident-analyze: guarded-by(Mu)
  std::vector<std::function<void()>> Tasks;
  // trident-analyze: guarded-by(Mu)
  size_t NextTask = 0;
  // trident-analyze: guarded-by(Mu)
  size_t Completed = 0;
  // trident-analyze: guarded-by(Mu)
  bool ShuttingDown = false;

  std::vector<std::thread> Workers;
};

} // namespace trident

#endif // TRIDENT_SIM_EXPERIMENTRUNNER_H
