# Empty compiler generated dependencies file for trident_sim_cli.
# This may be replaced when dependencies are built.
