file(REMOVE_RECURSE
  "CMakeFiles/trident_sim_cli.dir/trident_sim.cpp.o"
  "CMakeFiles/trident_sim_cli.dir/trident_sim.cpp.o.d"
  "trident_sim"
  "trident_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
