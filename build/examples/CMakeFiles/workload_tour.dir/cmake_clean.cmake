file(REMOVE_RECURSE
  "CMakeFiles/workload_tour.dir/workload_tour.cpp.o"
  "CMakeFiles/workload_tour.dir/workload_tour.cpp.o.d"
  "workload_tour"
  "workload_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
