# Empty dependencies file for workload_tour.
# This may be replaced when dependencies are built.
