# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;24;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;25;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;26;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hwpf_test "/root/repo/build/tests/hwpf_test")
set_tests_properties(hwpf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;27;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(branch_test "/root/repo/build/tests/branch_test")
set_tests_properties(branch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;28;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dlt_test "/root/repo/build/tests/dlt_test")
set_tests_properties(dlt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;29;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cpu_test "/root/repo/build/tests/cpu_test")
set_tests_properties(cpu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;30;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trident_test "/root/repo/build/tests/trident_test")
set_tests_properties(trident_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;31;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;32;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;33;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;34;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;35;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;36;trident_add_test;/root/repo/tests/CMakeLists.txt;0;")
