file(REMOVE_RECURSE
  "CMakeFiles/hwpf_test.dir/hwpf_test.cpp.o"
  "CMakeFiles/hwpf_test.dir/hwpf_test.cpp.o.d"
  "hwpf_test"
  "hwpf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
