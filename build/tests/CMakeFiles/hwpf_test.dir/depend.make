# Empty dependencies file for hwpf_test.
# This may be replaced when dependencies are built.
