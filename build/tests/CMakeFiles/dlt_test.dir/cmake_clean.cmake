file(REMOVE_RECURSE
  "CMakeFiles/dlt_test.dir/dlt_test.cpp.o"
  "CMakeFiles/dlt_test.dir/dlt_test.cpp.o.d"
  "dlt_test"
  "dlt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
