# Empty dependencies file for dlt_test.
# This may be replaced when dependencies are built.
