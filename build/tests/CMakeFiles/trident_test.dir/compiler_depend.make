# Empty compiler generated dependencies file for trident_test.
# This may be replaced when dependencies are built.
