file(REMOVE_RECURSE
  "CMakeFiles/trident_test.dir/trident_test.cpp.o"
  "CMakeFiles/trident_test.dir/trident_test.cpp.o.d"
  "trident_test"
  "trident_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
