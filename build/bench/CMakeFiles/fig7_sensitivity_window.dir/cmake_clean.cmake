file(REMOVE_RECURSE
  "CMakeFiles/fig7_sensitivity_window.dir/fig7_sensitivity_window.cpp.o"
  "CMakeFiles/fig7_sensitivity_window.dir/fig7_sensitivity_window.cpp.o.d"
  "fig7_sensitivity_window"
  "fig7_sensitivity_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sensitivity_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
