# Empty compiler generated dependencies file for fig7_sensitivity_window.
# This may be replaced when dependencies are built.
