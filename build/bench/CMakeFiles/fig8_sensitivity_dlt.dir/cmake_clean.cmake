file(REMOVE_RECURSE
  "CMakeFiles/fig8_sensitivity_dlt.dir/fig8_sensitivity_dlt.cpp.o"
  "CMakeFiles/fig8_sensitivity_dlt.dir/fig8_sensitivity_dlt.cpp.o.d"
  "fig8_sensitivity_dlt"
  "fig8_sensitivity_dlt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sensitivity_dlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
