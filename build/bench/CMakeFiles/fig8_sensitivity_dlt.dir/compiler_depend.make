# Empty compiler generated dependencies file for fig8_sensitivity_dlt.
# This may be replaced when dependencies are built.
