file(REMOVE_RECURSE
  "CMakeFiles/fig9_hw_vs_sw.dir/fig9_hw_vs_sw.cpp.o"
  "CMakeFiles/fig9_hw_vs_sw.dir/fig9_hw_vs_sw.cpp.o.d"
  "fig9_hw_vs_sw"
  "fig9_hw_vs_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hw_vs_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
