# Empty dependencies file for fig9_hw_vs_sw.
# This may be replaced when dependencies are built.
