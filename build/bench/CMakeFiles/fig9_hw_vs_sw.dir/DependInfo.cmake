
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_hw_vs_sw.cpp" "bench/CMakeFiles/fig9_hw_vs_sw.dir/fig9_hw_vs_sw.cpp.o" "gcc" "bench/CMakeFiles/fig9_hw_vs_sw.dir/fig9_hw_vs_sw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/trident_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trident_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trident/CMakeFiles/trident_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/dlt/CMakeFiles/trident_dlt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/trident_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hwpf/CMakeFiles/trident_hwpf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/trident_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/trident_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/trident_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/trident_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/trident_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
