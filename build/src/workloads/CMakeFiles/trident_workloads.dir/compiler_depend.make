# Empty compiler generated dependencies file for trident_workloads.
# This may be replaced when dependencies are built.
