file(REMOVE_RECURSE
  "CMakeFiles/trident_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/trident_workloads.dir/Workloads.cpp.o.d"
  "libtrident_workloads.a"
  "libtrident_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
