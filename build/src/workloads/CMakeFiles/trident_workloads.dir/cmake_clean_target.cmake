file(REMOVE_RECURSE
  "libtrident_workloads.a"
)
