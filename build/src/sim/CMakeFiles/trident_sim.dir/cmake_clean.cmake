file(REMOVE_RECURSE
  "CMakeFiles/trident_sim.dir/Simulation.cpp.o"
  "CMakeFiles/trident_sim.dir/Simulation.cpp.o.d"
  "libtrident_sim.a"
  "libtrident_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
