file(REMOVE_RECURSE
  "libtrident_sim.a"
)
