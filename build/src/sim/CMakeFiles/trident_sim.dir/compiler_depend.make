# Empty compiler generated dependencies file for trident_sim.
# This may be replaced when dependencies are built.
