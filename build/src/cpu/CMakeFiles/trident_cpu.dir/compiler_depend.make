# Empty compiler generated dependencies file for trident_cpu.
# This may be replaced when dependencies are built.
