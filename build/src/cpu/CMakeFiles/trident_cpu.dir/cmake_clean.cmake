file(REMOVE_RECURSE
  "CMakeFiles/trident_cpu.dir/SmtCore.cpp.o"
  "CMakeFiles/trident_cpu.dir/SmtCore.cpp.o.d"
  "libtrident_cpu.a"
  "libtrident_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
