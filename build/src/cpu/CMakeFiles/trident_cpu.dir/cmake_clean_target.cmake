file(REMOVE_RECURSE
  "libtrident_cpu.a"
)
