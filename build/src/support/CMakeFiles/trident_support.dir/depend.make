# Empty dependencies file for trident_support.
# This may be replaced when dependencies are built.
