file(REMOVE_RECURSE
  "CMakeFiles/trident_support.dir/Statistics.cpp.o"
  "CMakeFiles/trident_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/trident_support.dir/Table.cpp.o"
  "CMakeFiles/trident_support.dir/Table.cpp.o.d"
  "libtrident_support.a"
  "libtrident_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
