file(REMOVE_RECURSE
  "libtrident_support.a"
)
