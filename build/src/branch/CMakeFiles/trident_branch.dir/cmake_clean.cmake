file(REMOVE_RECURSE
  "CMakeFiles/trident_branch.dir/BranchPredictor.cpp.o"
  "CMakeFiles/trident_branch.dir/BranchPredictor.cpp.o.d"
  "libtrident_branch.a"
  "libtrident_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
