# Empty compiler generated dependencies file for trident_branch.
# This may be replaced when dependencies are built.
