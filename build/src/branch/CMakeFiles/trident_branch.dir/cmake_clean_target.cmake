file(REMOVE_RECURSE
  "libtrident_branch.a"
)
