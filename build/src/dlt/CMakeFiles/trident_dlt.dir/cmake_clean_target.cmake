file(REMOVE_RECURSE
  "libtrident_dlt.a"
)
