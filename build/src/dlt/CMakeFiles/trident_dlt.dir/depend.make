# Empty dependencies file for trident_dlt.
# This may be replaced when dependencies are built.
