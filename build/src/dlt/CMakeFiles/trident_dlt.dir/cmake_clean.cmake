file(REMOVE_RECURSE
  "CMakeFiles/trident_dlt.dir/DelinquentLoadTable.cpp.o"
  "CMakeFiles/trident_dlt.dir/DelinquentLoadTable.cpp.o.d"
  "libtrident_dlt.a"
  "libtrident_dlt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_dlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
