# Empty compiler generated dependencies file for trident_mem.
# This may be replaced when dependencies are built.
