file(REMOVE_RECURSE
  "CMakeFiles/trident_mem.dir/Cache.cpp.o"
  "CMakeFiles/trident_mem.dir/Cache.cpp.o.d"
  "CMakeFiles/trident_mem.dir/DataMemory.cpp.o"
  "CMakeFiles/trident_mem.dir/DataMemory.cpp.o.d"
  "CMakeFiles/trident_mem.dir/MemorySystem.cpp.o"
  "CMakeFiles/trident_mem.dir/MemorySystem.cpp.o.d"
  "CMakeFiles/trident_mem.dir/Tlb.cpp.o"
  "CMakeFiles/trident_mem.dir/Tlb.cpp.o.d"
  "libtrident_mem.a"
  "libtrident_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
