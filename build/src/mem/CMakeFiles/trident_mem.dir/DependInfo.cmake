
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/Cache.cpp" "src/mem/CMakeFiles/trident_mem.dir/Cache.cpp.o" "gcc" "src/mem/CMakeFiles/trident_mem.dir/Cache.cpp.o.d"
  "/root/repo/src/mem/DataMemory.cpp" "src/mem/CMakeFiles/trident_mem.dir/DataMemory.cpp.o" "gcc" "src/mem/CMakeFiles/trident_mem.dir/DataMemory.cpp.o.d"
  "/root/repo/src/mem/MemorySystem.cpp" "src/mem/CMakeFiles/trident_mem.dir/MemorySystem.cpp.o" "gcc" "src/mem/CMakeFiles/trident_mem.dir/MemorySystem.cpp.o.d"
  "/root/repo/src/mem/Tlb.cpp" "src/mem/CMakeFiles/trident_mem.dir/Tlb.cpp.o" "gcc" "src/mem/CMakeFiles/trident_mem.dir/Tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/trident_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/trident_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
