file(REMOVE_RECURSE
  "libtrident_mem.a"
)
