file(REMOVE_RECURSE
  "libtrident_rt.a"
)
