
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trident/BranchProfiler.cpp" "src/trident/CMakeFiles/trident_rt.dir/BranchProfiler.cpp.o" "gcc" "src/trident/CMakeFiles/trident_rt.dir/BranchProfiler.cpp.o.d"
  "/root/repo/src/trident/CodeCache.cpp" "src/trident/CMakeFiles/trident_rt.dir/CodeCache.cpp.o" "gcc" "src/trident/CMakeFiles/trident_rt.dir/CodeCache.cpp.o.d"
  "/root/repo/src/trident/TraceBuilder.cpp" "src/trident/CMakeFiles/trident_rt.dir/TraceBuilder.cpp.o" "gcc" "src/trident/CMakeFiles/trident_rt.dir/TraceBuilder.cpp.o.d"
  "/root/repo/src/trident/WatchTable.cpp" "src/trident/CMakeFiles/trident_rt.dir/WatchTable.cpp.o" "gcc" "src/trident/CMakeFiles/trident_rt.dir/WatchTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/trident_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/trident_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/trident_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/trident_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/trident_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
