file(REMOVE_RECURSE
  "CMakeFiles/trident_rt.dir/BranchProfiler.cpp.o"
  "CMakeFiles/trident_rt.dir/BranchProfiler.cpp.o.d"
  "CMakeFiles/trident_rt.dir/CodeCache.cpp.o"
  "CMakeFiles/trident_rt.dir/CodeCache.cpp.o.d"
  "CMakeFiles/trident_rt.dir/TraceBuilder.cpp.o"
  "CMakeFiles/trident_rt.dir/TraceBuilder.cpp.o.d"
  "CMakeFiles/trident_rt.dir/WatchTable.cpp.o"
  "CMakeFiles/trident_rt.dir/WatchTable.cpp.o.d"
  "libtrident_rt.a"
  "libtrident_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
