# Empty dependencies file for trident_rt.
# This may be replaced when dependencies are built.
