file(REMOVE_RECURSE
  "libtrident_isa.a"
)
