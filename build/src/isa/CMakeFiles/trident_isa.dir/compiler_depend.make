# Empty compiler generated dependencies file for trident_isa.
# This may be replaced when dependencies are built.
