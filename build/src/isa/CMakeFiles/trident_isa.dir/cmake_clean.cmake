file(REMOVE_RECURSE
  "CMakeFiles/trident_isa.dir/Instruction.cpp.o"
  "CMakeFiles/trident_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/trident_isa.dir/Opcode.cpp.o"
  "CMakeFiles/trident_isa.dir/Opcode.cpp.o.d"
  "CMakeFiles/trident_isa.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/trident_isa.dir/ProgramBuilder.cpp.o.d"
  "libtrident_isa.a"
  "libtrident_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
