file(REMOVE_RECURSE
  "CMakeFiles/trident_hwpf.dir/StreamBuffer.cpp.o"
  "CMakeFiles/trident_hwpf.dir/StreamBuffer.cpp.o.d"
  "CMakeFiles/trident_hwpf.dir/StridePredictor.cpp.o"
  "CMakeFiles/trident_hwpf.dir/StridePredictor.cpp.o.d"
  "libtrident_hwpf.a"
  "libtrident_hwpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_hwpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
