file(REMOVE_RECURSE
  "libtrident_hwpf.a"
)
