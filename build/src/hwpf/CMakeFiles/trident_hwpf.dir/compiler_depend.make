# Empty compiler generated dependencies file for trident_hwpf.
# This may be replaced when dependencies are built.
