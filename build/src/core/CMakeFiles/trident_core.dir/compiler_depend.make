# Empty compiler generated dependencies file for trident_core.
# This may be replaced when dependencies are built.
