file(REMOVE_RECURSE
  "libtrident_core.a"
)
