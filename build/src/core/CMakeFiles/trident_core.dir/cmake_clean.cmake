file(REMOVE_RECURSE
  "CMakeFiles/trident_core.dir/PrefetchPlanner.cpp.o"
  "CMakeFiles/trident_core.dir/PrefetchPlanner.cpp.o.d"
  "CMakeFiles/trident_core.dir/TridentRuntime.cpp.o"
  "CMakeFiles/trident_core.dir/TridentRuntime.cpp.o.d"
  "libtrident_core.a"
  "libtrident_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
