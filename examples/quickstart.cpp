//===- quickstart.cpp - Minimal end-to-end tour of the library ------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Builds a small pointer-chasing program with the public ProgramBuilder
// API, runs it on the baseline SMT machine (8x8 hardware stream buffers),
// then re-runs it with the Trident self-repairing prefetcher enabled, and
// prints what the dynamic optimizer did: traces formed, prefetches
// inserted, distance repairs, and the resulting speedup.
//
// Run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "sim/Simulation.h"
#include "support/Table.h"

#include <cstdio>

using namespace trident;

int main() {
  // --- 1. Author a workload against the public ISA API: a linked-list
  // walk over sequentially allocated 128-byte nodes reading three fields.
  constexpr Addr ListBase = 0x1000'0000;
  constexpr uint64_t NumNodes = 1 << 17; // 16MB footprint, beyond the L3

  ProgramBuilder B;
  B.loadImm(1, ListBase);           // r1 = node cursor
  B.loadImm(4, 0).loadImm(5, int64_t(1) << 40);
  B.label("loop");
  B.load(1, 1, 0);                  // r1 = r1->next   (delinquent!)
  B.load(6, 1, 8).load(7, 1, 16);   // near fields (same cache line)
  B.load(8, 1, 72);                 // far field (second line)
  B.fadd(9, 6, 7);
  B.fadd(9, 9, 8);
  B.fadd(10, 10, 9);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();

  Workload W;
  W.Name = "quickstart-chase";
  W.Description = "pointer chase over sequential 128B nodes";
  W.Prog = B.finish();
  W.Init = [](DataMemory &M) {
    buildLinkedList(M, ListBase, NumNodes, 128, 0, /*Shuffled=*/false);
  };

  // --- 2. Run on the hardware-prefetching baseline.
  SimConfig Base = SimConfig::hwBaseline();
  Base.WarmupInstructions = 100'000;
  Base.SimInstructions = 4'000'000;
  SimResult RBase = runSimulation(W, Base);

  // --- 3. Run with the event-driven self-repairing prefetcher on top.
  SimConfig Srp = SimConfig::withMode(PrefetchMode::SelfRepairing);
  Srp.WarmupInstructions = Base.WarmupInstructions;
  Srp.SimInstructions = Base.SimInstructions;
  SimResult RSrp = runSimulation(W, Srp);

  // --- 4. Report.
  Table T({"config", "IPC", "speedup", "traces", "pf-insns", "repairs",
           "helper-active"});
  T.addRow({RBase.ConfigName, formatDouble(RBase.Ipc, 3), "1.00x", "-", "-",
            "-", "-"});
  T.addRow({RSrp.ConfigName, formatDouble(RSrp.Ipc, 3),
            formatDouble(speedup(RSrp, RBase), 2) + "x",
            std::to_string(RSrp.Runtime.TracesInstalled),
            std::to_string(RSrp.Runtime.PrefetchInstructionsPlanned),
            std::to_string(RSrp.Runtime.RepairOptimizations),
            formatPercent(RSrp.helperActiveFraction(), 2)});
  std::printf("quickstart: dynamic self-repairing prefetching on a pointer "
              "chase\n\n%s\n",
              T.render().c_str());

  std::printf("load outcome breakdown with self-repairing prefetching:\n");
  const RuntimeStats &S = RSrp.Runtime;
  auto Pct = [&](uint64_t N) {
    return S.LdTotal ? 100.0 * double(N) / double(S.LdTotal) : 0.0;
  };
  std::printf("  hits:           %5.1f%%\n", Pct(S.LdHitNone));
  std::printf("  hit-prefetched: %5.1f%%\n", Pct(S.LdHitPrefetched));
  std::printf("  partial hits:   %5.1f%%\n", Pct(S.LdPartial));
  std::printf("  misses:         %5.1f%%\n", Pct(S.LdMiss + S.LdMissDueToPf));

  std::printf("\noptimizer activity: %llu delinquent events, %llu insertions, "
              "%llu repairs, %llu matured, %llu dropped; final distance %d\n",
              (unsigned long long)S.DelinquentEvents,
              (unsigned long long)S.InsertionOptimizations,
              (unsigned long long)S.RepairOptimizations,
              (unsigned long long)S.LoadsMatured,
              (unsigned long long)S.EventsDropped, S.LastRepairDistance);
  return 0;
}
