//===- trace_anatomy.cpp - Dissecting an optimized hot trace ---------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Shows what the dynamic optimizer actually does to code: runs an
// fma3d-style object walk, then disassembles (a) the original loop,
// (b) the streamlined hot trace Trident formed, and (c) the re-optimized
// trace with the same-object prefetches inserted — including the patched
// distance immediates after self-repair.
//
// Run:  ./build/examples/trace_anatomy
//
//===----------------------------------------------------------------------===//

#include "branch/BranchPredictor.h"
#include "core/TridentRuntime.h"
#include "hwpf/StreamBuffer.h"
#include "isa/ProgramBuilder.h"
#include "trident/CodeCache.h"

#include <cstdio>

using namespace trident;

static void disassembleRange(const CodeCache &CC, Addr Start, size_t Len,
                             const char *Title) {
  std::printf("%s\n", Title);
  for (size_t I = 0; I < Len; ++I) {
    const Instruction &Ins =
        const_cast<CodeCache &>(CC).at(Start + I);
    std::printf("  0x%llx: %s\n", (unsigned long long)(Start + I),
                toString(Ins).c_str());
  }
  std::printf("\n");
}

int main() {
  constexpr Addr StructBase = 0x1000'0000;
  ProgramBuilder B;
  B.loadImm(1, StructBase);
  B.loadImm(27, StructBase + (192ull << 20));
  B.label("loop");
  B.load(6, 1, 0).load(7, 1, 8);
  B.load(8, 1, 72).load(9, 1, 96);
  B.fadd(10, 6, 7);
  B.fadd(10, 10, 8);
  B.fadd(11, 11, 9);
  B.store(1, 24, 10);
  B.addi(1, 1, 128);
  B.blt(1, 27, "loop");
  B.halt();
  Program Prog = B.finish();
  Addr LoopHead = Prog.entryPC() + 2;

  std::printf("=== original loop (as compiled) ===\n%s\n",
              Prog.disassemble().c_str());

  DataMemory Data;
  MemorySystem Mem(MemSystemConfig::baseline());
  Mem.attachPrefetcher(
      std::make_unique<StreamBufferUnit>(StreamBufferConfig::config8x8()));
  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreConfig::baseline(), Image, Data, Mem);
  MetaPredictor Predictor;
  Core.setBranchPredictor(&Predictor);
  EventBus Bus;
  TridentRuntime Runtime(RuntimeConfig::baseline(), Prog, Core, CC);
  Runtime.attach(Bus);
  Core.setEventBus(&Bus);
  Runtime.setEnabled(true);
  Core.startContext(0, Prog.entryPC());

  // Phase 1: run just until the hot trace is formed (before any prefetch
  // insertion), and show the streamlined trace.
  for (int Step = 0; Step < 40 && Runtime.stats().TracesInstalled == 0;
       ++Step)
    Core.run(500, ~0ull);
  size_t FirstTraceLen = CC.sizeInstructions();
  if (Runtime.stats().TracesInstalled > 0) {
    std::printf("=== hot trace after formation (streamlined, base "
                "optimizations) ===\n");
    disassembleRange(CC, CodeCache::Base, FirstTraceLen,
                     "(code cache, generation 1)");
    std::printf("note the entry patch in the original binary:\n  0x%llx: "
                "%s\n\n",
                (unsigned long long)LoopHead,
                toString(Prog.at(LoopHead)).c_str());
  }

  // Phase 2: run long enough for delinquent-load events, prefetch
  // insertion and several repairs.
  Core.run(1'500'000, ~0ull);
  const RuntimeStats &S = Runtime.stats();
  std::printf("=== after %llu delinquent events, %llu insertion(s), %llu "
              "repair(s) ===\n",
              (unsigned long long)S.DelinquentEvents,
              (unsigned long long)S.InsertionOptimizations,
              (unsigned long long)S.RepairOptimizations);
  size_t After = CC.sizeInstructions();
  if (After > FirstTraceLen)
    disassembleRange(CC, CodeCache::Base + FirstTraceLen,
                     After - FirstTraceLen,
                     "(code cache, latest generation — note the synthetic "
                     "pf instructions\n whose immediates encode offset + "
                     "stride * distance, patched in place\n by repair)");

  if (const PrefetchPlan *Plan = Runtime.planFor(LoopHead))
    for (const PrefetchGroup &G : Plan->Groups)
      std::printf("group %u: distance %d of max %d (repairable=%d)\n", G.Id,
                  G.Distance, G.MaxDistance, G.Repairable);
  return 0;
}
