//===- workload_tour.cpp - Quick tour of the 14 benchmarks -----------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Runs every synthetic benchmark briefly under the hardware baseline and
// under the full self-repairing prefetcher, printing one line each — a
// fast way to see which memory behaviours the adaptive prefetcher helps
// (use the bench/ binaries for the full-budget figures).
//
// Run:  ./build/examples/workload_tour [instructions-per-run]
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace trident;

int main(int argc, char **argv) {
  uint64_t N = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;

  Table T({"benchmark", "behaviour", "IPC hw", "IPC +self-rep", "speedup",
           "miss coverage"});
  for (const std::string &Name : workloadNames()) {
    Workload W = makeWorkload(Name);

    SimConfig Base = SimConfig::hwBaseline();
    Base.SimInstructions = N;
    Base.WarmupInstructions = 100'000;
    SimConfig Srp = SimConfig::withMode(PrefetchMode::SelfRepairing);
    Srp.SimInstructions = N;
    Srp.WarmupInstructions = 100'000;

    SimResult RB = runSimulation(W, Base);
    SimResult RS = runSimulation(W, Srp);
    T.addRow({Name, W.Description, formatDouble(RB.Ipc, 3),
              formatDouble(RS.Ipc, 3),
              formatDouble(speedup(RS, RB), 2) + "x",
              formatPercent(RS.Runtime.prefetchMissCoverage(), 0)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", T.render().c_str());
  return 0;
}
