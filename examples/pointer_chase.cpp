//===- pointer_chase.cpp - Watching self-repair converge -------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Uses the *component-level* API (rather than the runSimulation wrapper)
// to wire up the machine by hand, run an mcf-like pointer chase in time
// slices, and print the prefetch distance trajectory as the self-repairing
// optimizer adapts it — the paper's Section 3.5 mechanism, live.
//
// Run:  ./build/examples/pointer_chase
//
//===----------------------------------------------------------------------===//

#include "branch/BranchPredictor.h"
#include "core/TridentRuntime.h"
#include "hwpf/StreamBuffer.h"
#include "isa/ProgramBuilder.h"
#include "trident/CodeCache.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace trident;

int main() {
  // --- The program: chase 128-byte nodes, touching two cache lines each.
  constexpr Addr ListBase = 0x1000'0000;
  ProgramBuilder B;
  B.loadImm(1, ListBase);
  B.loadImm(4, 0).loadImm(5, int64_t(1) << 40);
  B.label("loop");
  B.load(1, 1, 0);
  B.load(6, 1, 8).load(7, 1, 16);
  B.load(8, 1, 72).load(9, 1, 96);
  B.fadd(10, 6, 7);
  B.fadd(10, 10, 8);
  B.fadd(11, 10, 9);
  B.fadd(12, 12, 11);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  Program Prog = B.finish();
  Addr LoopHead = Prog.entryPC() + 3; // the "loop" label

  // --- Wire the machine by hand.
  DataMemory Data;
  buildRunShuffledList(Data, ListBase, 1 << 17, 128, 0, /*RunLength=*/32);

  MemorySystem Mem(MemSystemConfig::baseline());
  Mem.attachPrefetcher(
      std::make_unique<StreamBufferUnit>(StreamBufferConfig::config8x8()));

  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreConfig::baseline(), Image, Data, Mem);
  MetaPredictor Predictor;
  Core.setBranchPredictor(&Predictor);

  RuntimeConfig RC = RuntimeConfig::baseline();
  EventBus Bus;
  TridentRuntime Runtime(RC, Prog, Core, CC);
  Runtime.attach(Bus);
  Core.setEventBus(&Bus);
  Runtime.setEnabled(true);

  Core.startContext(0, Prog.entryPC());

  // --- Run in slices, watching the optimizer adapt.
  std::printf("slice  instrs    cycles    IPC    traces  events  repairs  "
              "distance\n");
  std::printf("-----  --------  --------  -----  ------  ------  -------  "
              "--------\n");
  uint64_t PrevInstr = 0;
  Cycle PrevCycles = 0;
  for (int Slice = 1; Slice <= 16; ++Slice) {
    Core.run(/*TargetCommits=*/150'000, /*CycleLimit=*/~0ull);
    uint64_t Instr = Core.stats(0).CommittedOriginal;
    Cycle Now = Core.now();
    double SliceIpc =
        double(Instr - PrevInstr) / double(Now - PrevCycles);
    const RuntimeStats &S = Runtime.stats();
    std::printf("%5d  %8llu  %8llu  %.3f  %6llu  %6llu  %7llu  %8d\n",
                Slice, (unsigned long long)Instr, (unsigned long long)Now,
                SliceIpc, (unsigned long long)S.TracesInstalled,
                (unsigned long long)S.DelinquentEvents,
                (unsigned long long)S.RepairOptimizations,
                Runtime.currentDistanceFor(LoopHead));
    PrevInstr = Instr;
    PrevCycles = Now;
  }

  // --- Final plan inspection through the public API.
  if (const PrefetchPlan *Plan = Runtime.planFor(LoopHead)) {
    std::printf("\nfinal prefetch plan for the hot loop:\n");
    std::printf("  %zu group(s), %zu planned prefetch instruction(s)\n",
                Plan->Groups.size(), Plan->Prefetches.size());
    for (const PrefetchGroup &G : Plan->Groups)
      std::printf("  group %u: %s, distance %d (max %d), covers %zu "
                  "load(s)\n",
                  G.Id, G.Repairable ? "stride/repairable" : "pointer",
                  G.Distance, G.MaxDistance, G.CoveredLoadIdxs.size());
  }
  std::printf("\nThe slice IPC should climb as the distance converges, then "
              "hold steady\nonce the loads mature (Sections 3.5.1-3.5.2).\n");
  return 0;
}
